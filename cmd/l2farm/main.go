// Command l2farm runs a parallel fuzzing farm over the simulated
// Bluetooth testbed: a job matrix of catalog devices × fuzzer kinds ×
// seed shards executed on a bounded worker pool.
//
// The farm is consumed through its event stream (StartFleet): every
// JobDone event becomes a progress line, and with -stream every
// NewFinding event is printed the moment the farm first sees that
// (state, PSM, error-class) signature — the mode meant for very long
// unattended farms, where waiting for the end-of-run report is not an
// option. The final farm report is rendered either way.
//
// Usage:
//
//	l2farm [-devices all|D1,D2,...] [-fuzzers l2fuzz,defensics,bfuzz,bss,rfcomm,campaign]
//	       [-shards 1] [-workers 0] [-seed 1] [-max-packets 250000]
//	       [-measure] [-quiet] [-stream] [-dump]
//
// Examples:
//
//	l2farm                                   # all eight devices × L2Fuzz
//	l2farm -fuzzers l2fuzz,campaign -shards 4
//	l2farm -devices D2,D5 -fuzzers all -measure
//	l2farm -fuzzers all -shards 8 -stream   # findings as they land
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"l2fuzz"
)

// kindAliases maps the CLI's lower-case fuzzer names to farm kinds,
// and allKindNames is the -fuzzers all expansion in report order; both
// derive from the library's kind list so new kinds appear here
// automatically.
var (
	kindAliases  = make(map[string]l2fuzz.FleetKind)
	allKindNames []string
)

func init() {
	for _, kind := range l2fuzz.FleetKinds() {
		name := strings.ToLower(string(kind))
		kindAliases[name] = kind
		allKindNames = append(allKindNames, name)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "l2farm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devices    = flag.String("devices", "all", "comma-separated catalog IDs, or \"all\" for the Table V testbed")
		fuzzers    = flag.String("fuzzers", "l2fuzz", "comma-separated fuzzer kinds, or \"all\"")
		shards     = flag.Int("shards", 1, "seed shards per (device, fuzzer) cell")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "farm base seed")
		maxPackets = flag.Int("max-packets", 0, "per-job packet budget (0 = library default)")
		measure    = flag.Bool("measure", false, "measurement-grade targets: defects disabled, metrics only")
		quiet      = flag.Bool("quiet", false, "suppress per-job progress lines")
		stream     = flag.Bool("stream", false, "print de-duplicated findings as they land")
		dump       = flag.Bool("dump", false, "print the first crash artefact of every finding")
	)
	flag.Parse()

	cfg := l2fuzz.FleetConfig{
		Shards:           *shards,
		BaseSeed:         *seed,
		Workers:          *workers,
		MaxPacketsPerJob: *maxPackets,
		MeasurementGrade: *measure,
	}
	if *devices != "all" {
		for _, id := range strings.Split(*devices, ",") {
			cfg.Devices = append(cfg.Devices, strings.TrimSpace(id))
		}
	}
	names := allKindNames
	if *fuzzers != "all" {
		names = strings.Split(*fuzzers, ",")
	}
	for _, name := range names {
		kind, ok := kindAliases[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return fmt.Errorf("unknown fuzzer %q (have %s)", name, strings.Join(allKindNames, ", "))
		}
		cfg.Kinds = append(cfg.Kinds, kind)
	}

	farm, err := l2fuzz.StartFleet(cfg)
	if err != nil {
		return err
	}
	printed := false
	for ev := range farm.Events() {
		switch ev.Type {
		case l2fuzz.FleetJobDone:
			if *quiet {
				continue
			}
			res := ev.Result
			status := fmt.Sprintf("%d findings", len(res.Findings))
			switch {
			case res.Err != nil:
				status = "FAILED: " + res.Err.Error()
			case len(res.Findings) == 0 && res.Crashed:
				status = "crashed (undetected)"
			case len(res.Findings) == 0:
				status = "clean"
			}
			fmt.Printf("[%*d/%d] %-22s %9d pkts  %12v sim  %s\n",
				len(fmt.Sprint(ev.Total)), ev.Done, ev.Total, res.Job.String(),
				res.PacketsSent, res.Elapsed.Round(1e6), status)
			printed = true
		case l2fuzz.FleetNewFinding:
			if !*stream {
				continue
			}
			f := ev.Finding
			fmt.Printf("NEW %s (%s) via %s on %s  [%d/%d jobs in]\n",
				f.Signature, f.Finding.Error.Severity(), ev.Job.Kind, ev.Job.Device,
				ev.Done, ev.Total)
			printed = true
		}
	}
	report := farm.Wait()

	if printed {
		fmt.Println()
	}
	fmt.Print(report.Render())
	if *dump {
		for i, f := range report.Findings {
			if f.Dump == "" {
				continue
			}
			fmt.Printf("\ncrash artefact for finding %d (%s):\n%s", i+1, f.Signature, f.Dump)
		}
	}
	if report.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", report.Failed, len(report.Jobs))
	}
	return nil
}
