// Command btscan runs only L2Fuzz's target-scanning phase: inquiry,
// SDP service enumeration and pairing-free port probing, against one or
// all of the simulated catalog devices.
//
// Usage:
//
//	btscan [-device D2]     # one device
//	btscan -all             # the whole Table V testbed
package main

import (
	"flag"
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deviceID = flag.String("device", "D2", "catalog device ID (D1..D8)")
		all      = flag.Bool("all", false, "scan every catalog device")
	)
	flag.Parse()

	ids := []string{*deviceID}
	if *all {
		ids = []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8"}
	}
	for _, id := range ids {
		// A fresh simulation per target keeps scans independent.
		sim, err := l2fuzz.NewSimulation()
		if err != nil {
			return err
		}
		target, err := sim.AddCatalogDevice(id)
		if err != nil {
			return err
		}
		scan, err := sim.Scan(target)
		if err != nil {
			return err
		}
		fmt.Printf("%s  %s  %s  class=0x%06X  OUI=%02X:%02X:%02X\n",
			id, scan.Meta.Addr, scan.Meta.Name, scan.Meta.ClassOfDevice,
			scan.Meta.OUI[0], scan.Meta.OUI[1], scan.Meta.OUI[2])
		for _, p := range scan.Ports {
			status := "open (exploitable)"
			switch {
			case p.RequiresPairing:
				status = "requires pairing"
			case p.Refused:
				status = "refused"
			}
			fmt.Printf("    PSM 0x%04X  %-24s %s\n", uint16(p.PSM), p.Name, status)
		}
		fmt.Printf("    → %d pairing-free port(s) selected for fuzzing\n\n", len(scan.ExploitablePSMs))
	}
	return nil
}
