// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§IV) from the simulation and prints them in the
// same rows/series the paper reports.
//
// Usage:
//
//	benchtab -exp tableV
//	benchtab -exp tableVI [-seed 11]
//	benchtab -exp tableVII [-packets 100000]
//	benchtab -exp fig8 | fig9 | fig10 | fig11
//	benchtab -exp trajectory [-benchdir .] [-csv]
//	benchtab -exp all
//
// The trajectory experiment is not part of the paper: it renders the
// repo's own cross-PR performance trajectory from every committed
// BENCH_<pr>.json snapshot (pkts/s, MB/op, allocs/op and deltas per PR).
// With -csv it emits the same points as machine-readable CSV through
// the analyzer's shared CSV pipeline, column-compatible with the
// l2journal per-run exports.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"l2fuzz/internal/harness"
	"l2fuzz/internal/telemetry"
	"l2fuzz/internal/telemetry/analyze"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: tableV, tableVI, tableVII, fig8, fig9, fig10, fig11, trajectory, all")
		seed     = flag.Int64("seed", 11, "random seed")
		packets  = flag.Int("packets", 100_000, "per-fuzzer packet budget for the comparison experiments")
		benchdir = flag.String("benchdir", ".", "directory holding BENCH_<pr>.json snapshots for -exp trajectory")
		csvOut   = flag.Bool("csv", false, "emit -exp trajectory as CSV instead of the text table")
	)
	flag.Parse()

	run := map[string]bool{*exp: true}
	if *exp == "all" {
		for _, e := range []string{"tableV", "tableVI", "tableVII", "fig8", "fig9", "fig10", "fig11"} {
			run[e] = true
		}
	}
	ran := false

	if run["trajectory"] {
		snaps, err := loadTrajectory(*benchdir)
		if err != nil {
			return err
		}
		if *csvOut {
			if err := trajectoryCSV(os.Stdout, snaps); err != nil {
				return err
			}
		} else {
			fmt.Println(telemetry.RenderBenchTrajectory(snaps))
		}
		ran = true
	}
	if *csvOut && !run["trajectory"] {
		return fmt.Errorf("-csv only applies to -exp trajectory")
	}

	if run["tableV"] {
		fmt.Println(harness.RenderTableV(harness.TableV()))
		ran = true
	}
	if run["tableVI"] {
		cfg := harness.DefaultTableVIConfig()
		cfg.Seed = *seed
		rows, err := harness.TableVI(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderTableVI(rows))
		ran = true
	}
	if run["tableVII"] {
		cfg := harness.TableVIIConfig{Seed: *seed, Packets: *packets}
		rows, err := harness.TableVII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderTableVII(rows))
		ran = true
	}
	fcfg := harness.FigureConfig{Seed: *seed, Packets: *packets, SampleEvery: *packets / 10}
	if run["fig8"] {
		series, err := harness.Figure8(fcfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderSeries(
			"Figure 8: MP Ratio measurement (cumulative, log-scaled in the paper)",
			"#Transmitted Packets", "#Transmitted Malformed Packets", series))
		ran = true
	}
	if run["fig9"] {
		series, err := harness.Figure9(fcfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderSeries(
			"Figure 9: PR Ratio measurement (cumulative)",
			"#Received Packets", "#Received Rejection Packets", series))
		ran = true
	}
	if run["fig10"] || run["fig11"] {
		rows, err := harness.Figure10(fcfg)
		if err != nil {
			return err
		}
		if run["fig10"] {
			fmt.Println(harness.RenderFigure10(rows))
		}
		if run["fig11"] {
			fmt.Println(harness.RenderFigure11(rows))
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// loadTrajectory loads every BENCH_<pr>.json under dir, sorted by PR
// number.
func loadTrajectory(dir string) ([]telemetry.TrajectorySnapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type entry struct {
		pr   int
		path string
	}
	var entries []entry
	for _, p := range paths {
		label := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		pr, err := strconv.Atoi(label)
		if err != nil {
			continue // not a BENCH_<pr>.json snapshot
		}
		entries = append(entries, entry{pr: pr, path: p})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no BENCH_<pr>.json snapshots under %s", dir)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pr < entries[j].pr })
	var snaps []telemetry.TrajectorySnapshot
	for _, e := range entries {
		s, err := telemetry.ReadBenchSnapshot(e.path)
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, telemetry.TrajectorySnapshot{Label: strconv.Itoa(e.pr), Snapshot: s})
	}
	return snaps, nil
}

// trajectoryCSV writes the trajectory points through the analyzer's
// shared CSV pipeline: one row per (PR, bench row) measurement.
func trajectoryCSV(w io.Writer, snaps []telemetry.TrajectorySnapshot) error {
	header := []string{"pr", "bench", "row", "pkts_per_sec", "mb_per_op", "allocs_per_op", "parent_only"}
	var rows [][]string
	for _, ts := range snaps {
		for _, r := range ts.Snapshot.Rows {
			if strings.HasPrefix(r.Name, "pre/") {
				continue // same-host baselines, not trajectory points
			}
			rows = append(rows, []string{
				ts.Label,
				ts.Snapshot.Bench,
				r.Name,
				strconv.FormatFloat(r.PktsPerSec, 'f', 1, 64),
				strconv.FormatFloat(r.MBPerOp, 'f', 3, 64),
				strconv.FormatInt(r.AllocsPerOp, 10),
				strconv.FormatBool(r.ParentOnly),
			})
		}
	}
	return analyze.WriteCSV(w, header, rows)
}
