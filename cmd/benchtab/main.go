// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§IV) from the simulation and prints them in the
// same rows/series the paper reports.
//
// Usage:
//
//	benchtab -exp tableV
//	benchtab -exp tableVI [-seed 11]
//	benchtab -exp tableVII [-packets 100000]
//	benchtab -exp fig8 | fig9 | fig10 | fig11
//	benchtab -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"l2fuzz/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: tableV, tableVI, tableVII, fig8, fig9, fig10, fig11, all")
		seed    = flag.Int64("seed", 11, "random seed")
		packets = flag.Int("packets", 100_000, "per-fuzzer packet budget for the comparison experiments")
	)
	flag.Parse()

	run := map[string]bool{*exp: true}
	if *exp == "all" {
		for _, e := range []string{"tableV", "tableVI", "tableVII", "fig8", "fig9", "fig10", "fig11"} {
			run[e] = true
		}
	}
	ran := false

	if run["tableV"] {
		fmt.Println(harness.RenderTableV(harness.TableV()))
		ran = true
	}
	if run["tableVI"] {
		cfg := harness.DefaultTableVIConfig()
		cfg.Seed = *seed
		rows, err := harness.TableVI(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderTableVI(rows))
		ran = true
	}
	if run["tableVII"] {
		cfg := harness.TableVIIConfig{Seed: *seed, Packets: *packets}
		rows, err := harness.TableVII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderTableVII(rows))
		ran = true
	}
	fcfg := harness.FigureConfig{Seed: *seed, Packets: *packets, SampleEvery: *packets / 10}
	if run["fig8"] {
		series, err := harness.Figure8(fcfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderSeries(
			"Figure 8: MP Ratio measurement (cumulative, log-scaled in the paper)",
			"#Transmitted Packets", "#Transmitted Malformed Packets", series))
		ran = true
	}
	if run["fig9"] {
		series, err := harness.Figure9(fcfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderSeries(
			"Figure 9: PR Ratio measurement (cumulative)",
			"#Received Packets", "#Received Rejection Packets", series))
		ran = true
	}
	if run["fig10"] || run["fig11"] {
		rows, err := harness.Figure10(fcfg)
		if err != nil {
			return err
		}
		if run["fig10"] {
			fmt.Println(harness.RenderFigure10(rows))
		}
		if run["fig11"] {
			fmt.Println(harness.RenderFigure11(rows))
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
