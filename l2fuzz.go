// Package l2fuzz is the public API of the L2Fuzz reproduction: a stateful
// fuzzer for the Bluetooth BR/EDR L2CAP layer (Park, Nkuba, Woo, Lee —
// "L2Fuzz: Discovering Bluetooth L2CAP Vulnerabilities Using Stateful
// Fuzz Testing", DSN 2022), together with the simulated Bluetooth testbed
// it runs against.
//
// A Simulation owns a deterministic in-memory radio medium, a tester
// endpoint (the analogue of the paper's Ubuntu machine with a Class-1
// dongle), a Wireshark-style trace sniffer, and any number of simulated
// target devices. The eight devices of the paper's Table V are available
// by catalog ID ("D1" through "D8"); custom devices can be built from
// vendor stack profiles.
//
// Basic use:
//
//	sim, err := l2fuzz.NewSimulation()
//	...
//	target, err := sim.AddCatalogDevice("D2") // Pixel 3, defects armed
//	...
//	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 1})
//	if report.Found {
//	    fmt.Println(report.Finding.Error, "in", report.Finding.State)
//	    fmt.Println(sim.CrashDump(target)) // the Android tombstone
//	}
//
// The four comparison fuzzers of the paper's evaluation (L2Fuzz,
// Defensics, BFuzz, BSS) can all be run through RunBaseline, and the
// sniffer's Metrics reproduce the paper's mutation-efficiency and
// state-coverage measurements.
//
// Beyond one simulation at a time, RunFleet orchestrates a parallel
// fuzzing farm: a job matrix of targets × fuzzer kinds × configuration
// variants × seed shards executed on a bounded worker pool, with
// findings de-duplicated across devices and trace metrics merged into
// one report. The target axis is programmable: catalog IDs and custom
// DeviceSpec values (FleetDeviceSpec, ParseDeviceSpec) fuzz side by
// side, and the variant axis reproduces the paper's §IV-D ablation
// grid in one run — see FleetAblationVariants:
//
//	report, err := l2fuzz.RunFleet(l2fuzz.FleetConfig{
//	    Kinds:   []l2fuzz.FleetKind{l2fuzz.FleetL2Fuzz, l2fuzz.FleetCampaign},
//	    Shards:  4,
//	    Workers: 8,
//	})
//	...
//	fmt.Println(report.Render()) // per-device/per-fuzzer farm report
//
// For long unattended farms, StartFleet exposes the streaming core
// underneath RunFleet: an event stream of job starts, job completions
// and findings as they land, plus live mid-run report snapshots:
//
//	farm, err := l2fuzz.StartFleet(cfg)
//	...
//	for ev := range farm.Events() {
//	    if ev.Type == l2fuzz.FleetNewFinding {
//	        fmt.Println("found:", ev.Finding.Signature)
//	    }
//	}
//	report := farm.Wait()
//
// Findings become durable, reproducible artefacts through a corpus:
// OpenCorpus plus FleetConfig.Corpus persist every new finding's
// recorded repro trace as it streams in, a second farm over the same
// store reports known signatures as Known instead of new, and
// ReplayCorpusEntry / MinimizeCorpusEntry re-drive and delta-debug a
// stored finding against a fresh rig, feeding the reproduced crash
// artefact to triage (cmd/l2repro is the CLI form):
//
//	store, err := l2fuzz.OpenCorpus("findings/")
//	...
//	report, err := l2fuzz.RunFleet(l2fuzz.FleetConfig{Corpus: store})
//	...
//	entry, err := store.Get(report.Findings[0].Signature)
//	...
//	res, err := l2fuzz.ReplayCorpusEntry(entry, l2fuzz.CorpusReplayConfig{})
//	fmt.Println(res.Reproduced, res.RootCause.Render())
//
// Running farms are observable. FleetConfig.Counters taps the packet
// hot path with allocation-free atomic counters, FleetConfig.Journal
// records every farm event (plus periodic counter samples) as a
// timestamped JSONL run journal that ReplayFleetJournal can fold back
// into the exact live report, and ServeTelemetry exposes counters,
// Prometheus-format metrics, live report snapshots and pprof over HTTP
// while the farm runs (cmd/l2farm's -telemetry and -journal flags are
// the CLI form):
//
//	ctr := &l2fuzz.TelemetryCounters{}
//	journal, err := l2fuzz.OpenTelemetryJournal("runs/run-1")
//	...
//	farm, err := l2fuzz.StartFleet(l2fuzz.FleetConfig{Counters: ctr, Journal: journal})
//	...
//	srv, err := l2fuzz.ServeTelemetry("localhost:6060", l2fuzz.TelemetryServerConfig{
//	    Counters: ctr,
//	    Snapshot: func() any { return farm.Snapshot() },
//	})
//
// A recorded journal is also the input to post-hoc analytics: every
// record carries a monotonic offset from the farm's start and every
// job result a FleetSpan trace, and cmd/l2journal renders the paper's
// coverage-over-time figures, latency breakdowns and per-worker
// utilization from journal.jsonl alone.
package l2fuzz

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"l2fuzz/internal/bt/device"
	"l2fuzz/internal/bt/host"
	"l2fuzz/internal/bt/radio"
	"l2fuzz/internal/bt/rfcomm"
	"l2fuzz/internal/campaign"
	"l2fuzz/internal/core"
	"l2fuzz/internal/corpus"
	"l2fuzz/internal/fleet"
	"l2fuzz/internal/fuzzers"
	"l2fuzz/internal/fuzzers/bfuzz"
	"l2fuzz/internal/fuzzers/bss"
	"l2fuzz/internal/fuzzers/defensics"
	"l2fuzz/internal/metrics"
	"l2fuzz/internal/rfcommfuzz"
	"l2fuzz/internal/sdpfuzz"
	"l2fuzz/internal/smfuzz"
	"l2fuzz/internal/telemetry"
	"l2fuzz/internal/triage"
)

// Re-exported result and configuration types. These are aliases, so the
// full method sets of the underlying types are available.
type (
	// Report is the outcome of an L2Fuzz run (scan result, finding,
	// elapsed simulated time, packet counts, tested states).
	Report = core.Report
	// Finding is one detected vulnerability.
	Finding = core.Finding
	// ScanReport is the target-scanning phase outcome.
	ScanReport = core.ScanReport
	// ErrorClass is the paper's connection-error taxonomy.
	ErrorClass = core.ErrorClass
	// Metrics is a trace-derived measurement summary: MP ratio, PR
	// ratio, mutation efficiency, packets/second and state coverage.
	Metrics = metrics.Summary
	// DeviceProfile is a vendor host-stack behaviour profile.
	DeviceProfile = device.Profile
	// DeviceSpec is a first-class fuzzing target: a name, a full device
	// configuration and optional expected-defect metadata. The catalog
	// is eight predefined specs (CatalogDeviceSpec); custom specs open
	// the target axis to devices the paper never named — build them
	// with FleetDeviceSpec, decode them with ParseDeviceSpec, run them
	// through Simulation.AddDeviceSpec or FleetConfig.CustomDevices.
	DeviceSpec = device.Spec
	// DeviceVulnSpec is one injected implementation defect a custom
	// target's profile may carry.
	DeviceVulnSpec = device.VulnSpec
	// ServicePort is one exposed L2CAP service.
	ServicePort = device.ServicePort
	// BaselineResult is the outcome of a baseline fuzzer run.
	BaselineResult = fuzzers.Result
	// RFCOMMService is one RFCOMM server channel on a custom device.
	RFCOMMService = rfcomm.Service
	// RFCOMMReport is the outcome of the §V extension fuzzer.
	RFCOMMReport = rfcommfuzz.Report
	// SDPFuzzReport is the outcome of the SDP malformation engine.
	SDPFuzzReport = sdpfuzz.Report
	// SMFuzzReport is the outcome of the state-machine walk engine.
	SMFuzzReport = smfuzz.Report
	// CampaignConfig parameterises long-term fuzzing with automatic
	// device resets.
	CampaignConfig = campaign.Config
	// CampaignReport is the aggregated outcome of a campaign.
	CampaignReport = campaign.Report
	// RootCause is a structured crash root-cause analysis.
	RootCause = triage.Report
	// FleetConfig describes a fuzzing-farm job matrix (targets —
	// catalog IDs plus custom DeviceSpecs — × fuzzer kinds × variants ×
	// seed shards) and its worker pool.
	FleetConfig = fleet.Config
	// FleetReport is the aggregated farm outcome: de-duplicated
	// findings, per-device/per-fuzzer breakdowns, merged metrics.
	FleetReport = fleet.Report
	// FleetJob is one cell×shard of a farm matrix.
	FleetJob = fleet.Job
	// FleetJobResult is the outcome of one farm job.
	FleetJobResult = fleet.JobResult
	// FleetSpan traces one farm job through the scheduling phases —
	// queued, dispatched, started, finished, plus the worker-measured
	// execution time — as monotonic offsets from the farm's start.
	// Journals persist it per job result; `l2journal latency` and
	// `l2journal workers` render the derived figures.
	FleetSpan = fleet.Span
	// FleetFinding is one de-duplicated farm finding with provenance.
	FleetFinding = fleet.FindingRecord
	// FleetKind selects the fuzzer a farm job runs.
	FleetKind = fleet.Kind
	// FleetVariant is one point on a farm matrix's variant axis: a named
	// per-job configuration override (the paper's §IV-D ablations, or
	// arbitrary core/rfcommfuzz/campaign knob overrides).
	FleetVariant = fleet.Variant
	// FleetVariantStats is a per-variant report row: job counters plus
	// the variant's own merged trace metrics.
	FleetVariantStats = fleet.VariantStats
	// FleetFarm is a running farm: an event stream plus live report
	// snapshots.
	FleetFarm = fleet.Farm
	// FleetEvent is one entry of a farm's progress stream.
	FleetEvent = fleet.Event
	// FleetEventType discriminates farm events.
	FleetEventType = fleet.EventType
	// FleetAggregator folds farm job results incrementally and
	// snapshots full reports at any moment.
	FleetAggregator = fleet.Aggregator
	// FleetCorpusStats summarises a corpus-backed farm's store
	// interaction (new traces saved, known signatures recognised).
	FleetCorpusStats = fleet.CorpusStats
	// FleetExecutor is the transport a farm drives its jobs through:
	// the in-process pool (FleetLocalExecutor, the default) or worker
	// subprocesses (FleetProcExecutor). Wire one into a farm via
	// FleetConfig.Executor; both transports produce identical reports.
	FleetExecutor = fleet.Executor
	// FleetLocalExecutor runs farm jobs in-process on the dispatcher
	// goroutines — the default when FleetConfig.Executor is nil.
	FleetLocalExecutor = fleet.LocalExecutor
	// FleetProcExecutor runs farm jobs in worker subprocesses speaking a
	// length-prefixed JSON protocol over their stdin/stdout. A crashed
	// or deadline-blown worker is retired and its job requeued; the farm
	// degrades to the surviving workers.
	FleetProcExecutor = fleet.ProcExecutor
	// FleetProcConfig parameterises a FleetProcExecutor: worker count,
	// the worker command (defaults to re-executing this binary with
	// "-worker"), extra environment and an optional per-job deadline.
	FleetProcConfig = fleet.ProcConfig
	// FindingSignature is the shared (state, port, error-class) triple
	// findings de-duplicate by — within a campaign, across a farm, and
	// across runs in a corpus store.
	FindingSignature = core.Signature
	// CorpusStore persists findings with their recorded repro traces as
	// JSON files in a directory, keyed by signature. Wire one into a
	// farm via FleetConfig.Corpus; open one with OpenCorpus.
	CorpusStore = corpus.Store
	// CorpusEntry is one persisted finding: signature, fuzzer kind,
	// the finding itself and its repro trace.
	CorpusEntry = corpus.Entry
	// CorpusTrace is the recorded repro recipe of a finding: seed,
	// target name, state and port under test, and the ordered client
	// operation sequence that drove a fresh rig into the crash.
	CorpusTrace = corpus.Trace
	// CorpusOp is one recorded client operation (page, link drop, or
	// transmitted wire packet).
	CorpusOp = corpus.Op
	// CorpusReplayConfig parameterises ReplayCorpusEntry (pass the spec
	// for entries recorded against custom targets).
	CorpusReplayConfig = corpus.ReplayConfig
	// CorpusReplayResult reports whether a replay reproduced the entry's
	// signature on a fresh rig, with the fresh crash artefact and the
	// triage root-cause report.
	CorpusReplayResult = corpus.ReplayResult
	// CorpusMinimizeConfig parameterises MinimizeCorpusEntry.
	CorpusMinimizeConfig = corpus.MinimizeConfig
	// CorpusMinimizeResult is the delta-debugged (minimal still-crashing)
	// form of an entry's trace.
	CorpusMinimizeResult = corpus.MinimizeResult
	// TelemetryCounters is a set of allocation-free atomic hot-path
	// counters (frames, packets, mutations, findings, job lifecycle).
	// Wire one into a farm via FleetConfig.Counters; all methods are
	// safe on a nil receiver, so instrumentation is zero-cost when off.
	TelemetryCounters = telemetry.Counters
	// TelemetryCounterSnapshot is a consistent point-in-time reading of
	// a counter set.
	TelemetryCounterSnapshot = telemetry.CounterSnapshot
	// TelemetryJournal is a structured JSONL run journal: farm events
	// and periodic counter samples as timestamped records. Wire one into
	// a farm via FleetConfig.Journal; replay it with ReplayFleetJournal.
	TelemetryJournal = telemetry.Journal
	// TelemetryRecord is one timestamped journal record.
	TelemetryRecord = telemetry.Record
	// TelemetryServer is a live introspection HTTP server (expvar,
	// Prometheus text metrics, report snapshots, pprof).
	TelemetryServer = telemetry.Server
	// TelemetryServerConfig wires counters and a snapshot source into a
	// TelemetryServer.
	TelemetryServerConfig = telemetry.ServerConfig
	// BenchRow is one recorded benchmark measurement (packets/s, MB and
	// allocations per op).
	BenchRow = telemetry.BenchRow
	// BenchSnapshot is a committed benchmark trajectory: environment
	// fingerprint plus measurement rows (the repo's BENCH_*.json files).
	BenchSnapshot = telemetry.BenchSnapshot
)

// The farm event types.
const (
	// FleetJobStarted fires when a worker picks up a job.
	FleetJobStarted = fleet.EventJobStarted
	// FleetJobDone fires when a job's result is folded into the farm
	// aggregate.
	FleetJobDone = fleet.EventJobDone
	// FleetNewFinding fires for every finding signature the farm had
	// not seen before.
	FleetNewFinding = fleet.EventNewFinding
	// FleetWorkerUp fires once per executor worker before any job
	// event (executors with identifiable workers only).
	FleetWorkerUp = fleet.EventWorkerUp
	// FleetWorkerDown fires when an executor worker retires — cleanly
	// at shutdown, or mid-run with the reason in Event.WorkerErr.
	FleetWorkerDown = fleet.EventWorkerDown
)

// The schedulable farm job kinds: the paper's four compared fuzzers,
// the two §V extensions, and the scenario-diversity engines over the
// SDP and L2CAP state-machine surfaces.
const (
	FleetL2Fuzz    = fleet.KindL2Fuzz
	FleetDefensics = fleet.KindDefensics
	FleetBFuzz     = fleet.KindBFuzz
	FleetBSS       = fleet.KindBSS
	FleetRFCOMM    = fleet.KindRFCOMM
	FleetCampaign  = fleet.KindCampaign
	FleetSDP       = fleet.KindSDP
	FleetSM        = fleet.KindSM
)

// FleetKinds returns every schedulable farm job kind in report order.
func FleetKinds() []FleetKind { return fleet.AllKinds() }

// The predefined farm variant names (the paper's §IV-D ablation grid).
const (
	FleetVariantBaseline       = fleet.VariantBaseline
	FleetVariantNoStateGuiding = fleet.VariantNoStateGuiding
	FleetVariantAllFields      = fleet.VariantAllFields
	FleetVariantNoGarbage      = fleet.VariantNoGarbage
)

// FleetAblationVariants returns the §IV-D ablation grid in report
// order: the baseline followed by the no-state-guiding, all-fields and
// no-garbage ablations. A farm over these variants reproduces the
// paper's design-argument table from a single report.
func FleetAblationVariants() []FleetVariant { return fleet.AblationVariants() }

// FleetVariantByName resolves one of the predefined ablation variants
// by name.
func FleetVariantByName(name string) (FleetVariant, error) { return fleet.VariantByName(name) }

// RunFleet executes a fuzzing farm: every job of the matrix described
// by cfg runs in its own private Simulation-equivalent testbed on a
// bounded worker pool, and the results aggregate into one FleetReport.
// Equal configs give equal reports regardless of worker scheduling
// (wall-clock aside). The error covers matrix validation; individual
// job failures are recorded in the report.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	return fleet.Run(cfg)
}

// StartFleet launches a fuzzing farm and returns it streaming: the
// farm's Events channel announces job starts, job completions and
// de-duplicated findings as they land, Snapshot renders the aggregate
// mid-run, and Wait returns the final report. RunFleet is this plus a
// drain loop — the two share one aggregation path, so a streamed farm
// and a batch farm over the same matrix agree exactly. The consumer
// must drain Events (or call Wait, which drains the rest).
func StartFleet(cfg FleetConfig) (*FleetFarm, error) {
	return fleet.Start(cfg)
}

// NewFleetProcExecutor builds a process-isolated farm executor: Start
// spawns the worker subprocesses, each job travels to an idle worker as
// length-prefixed JSON and its result (findings, metrics, telemetry
// deltas) travels back. Pass it via FleetConfig.Executor.
func NewFleetProcExecutor(pc FleetProcConfig) *FleetProcExecutor {
	return fleet.NewProcExecutor(pc)
}

// RunFleetWorker speaks the farm worker protocol on r and w — the
// entry point a worker subprocess calls on its stdin/stdout when
// spawned by a FleetProcExecutor (cmd/l2farm wires it to -worker). It
// returns nil when the coordinator closes the job stream.
func RunFleetWorker(r io.Reader, w io.Writer) error {
	return fleet.RunWorker(r, w)
}

// OpenCorpus opens (creating if needed) a persistent finding corpus in
// dir. Wire it into a farm with FleetConfig.Corpus: new findings are
// persisted with their repro traces as they stream in, and findings
// whose signature the store already holds are marked Known in the
// report instead of announced as new.
func OpenCorpus(dir string) (*CorpusStore, error) {
	return corpus.Open(dir)
}

// CorpusKey derives the stable store key of a finding signature (the
// addressing scheme cmd/l2repro uses).
func CorpusKey(sig FindingSignature) string { return corpus.KeyOf(sig) }

// ReplayCorpusEntry re-drives a stored entry's recorded trace against a
// fresh testbed rig, verifies the crash still fires with the recorded
// signature, and triages the freshly reproduced crash artefact.
func ReplayCorpusEntry(e CorpusEntry, cfg CorpusReplayConfig) (*CorpusReplayResult, error) {
	return corpus.Replay(e, cfg)
}

// MinimizeCorpusEntry delta-debugs a stored entry's trace to a minimal
// operation sequence that still reproduces its signature on a fresh
// rig.
func MinimizeCorpusEntry(e CorpusEntry, cfg CorpusMinimizeConfig) (*CorpusMinimizeResult, error) {
	return corpus.Minimize(e, cfg)
}

// TelemetryJournalFile is the file name OpenTelemetryJournal creates in
// its run directory.
const TelemetryJournalFile = telemetry.JournalFile

// NewTelemetryJournal builds a run journal writing JSONL records to w.
func NewTelemetryJournal(w io.Writer) *TelemetryJournal { return telemetry.NewJournal(w) }

// OpenTelemetryJournal creates dir (and parents) and opens a fresh
// journal file inside it, refusing to overwrite an existing one — each
// run gets its own directory.
func OpenTelemetryJournal(dir string) (*TelemetryJournal, error) { return telemetry.OpenJournal(dir) }

// DecodeTelemetryJournal streams a journal's records through fn.
func DecodeTelemetryJournal(r io.Reader, fn func(TelemetryRecord) error) error {
	return telemetry.DecodeJournal(r, fn)
}

// ReplayFleetJournal folds a recorded run journal back through a fresh
// aggregator and returns the reconstructed farm report. cfg must
// describe the same job matrix the journal was recorded from; the
// reconstructed report matches the live one exactly (the farm-level
// Wall aside, which only the live farm's clock can stamp).
func ReplayFleetJournal(cfg FleetConfig, r io.Reader) (*FleetReport, error) {
	return fleet.ReplayJournal(cfg, r)
}

// ServeTelemetry starts the live introspection endpoint on addr
// (e.g. "localhost:6060"): /debug/vars, /metrics in Prometheus text
// format, /snapshot with the configured snapshot source, and
// /debug/pprof. Close shuts it down.
func ServeTelemetry(addr string, cfg TelemetryServerConfig) (*TelemetryServer, error) {
	return telemetry.Serve(addr, cfg)
}

// MeasureBenchRow runs fn under runtime memory accounting and returns a
// benchmark row with its packet rate and per-op allocation figures.
func MeasureBenchRow(fn func() (packets int64, findings int)) BenchRow { return telemetry.Measure(fn) }

// NewBenchSnapshot stamps measurement rows with the running binary's
// environment fingerprint.
func NewBenchSnapshot(bench string, rows []BenchRow) BenchSnapshot {
	return telemetry.NewBenchSnapshot(bench, rows)
}

// WriteBenchSnapshot writes a benchmark trajectory as indented JSON —
// the format of the repo's committed BENCH_*.json files.
func WriteBenchSnapshot(path string, s BenchSnapshot) error {
	return telemetry.WriteBenchSnapshot(path, s)
}

// ReadBenchSnapshot reads a benchmark trajectory written by
// WriteBenchSnapshot.
func ReadBenchSnapshot(path string) (BenchSnapshot, error) { return telemetry.ReadBenchSnapshot(path) }

// Connection-error classes (paper §III-E).
const (
	ErrNone             = core.ErrNone
	ErrConnectionFailed = core.ErrConnectionFailed
	ErrConnectionAbort  = core.ErrConnectionAborted
	ErrConnectionReset  = core.ErrConnectionReset
	ErrConnectionRefuse = core.ErrConnectionRefused
	ErrTimeout          = core.ErrTimeout
)

// Vendor stack profile constructors, re-exported for custom devices.
var (
	// BlueDroidProfile models Android's stack (lenient, eager).
	BlueDroidProfile = device.BlueDroidProfile
	// BlueZProfile models the Linux stack.
	BlueZProfile = device.BlueZProfile
	// IOSProfile models Apple's iOS stack (strict).
	IOSProfile = device.IOSProfile
	// RTKitProfile models Apple's earphone firmware stack.
	RTKitProfile = device.RTKitProfile
	// BTWProfile models Broadcom's BTW stack (strict).
	BTWProfile = device.BTWProfile
	// WindowsProfile models the Microsoft stack (strict).
	WindowsProfile = device.WindowsProfile
)

// Injected-defect constructors, re-exported so custom target specs can
// arm the catalog's four findings with their own calibration (pass the
// result to a profile constructor's vulns parameter).
var (
	// BlueDroidCCBNullDeref is the D1/D2 null-CCB dereference (DoS).
	BlueDroidCCBNullDeref = device.BlueDroidCCBNullDeref
	// SamsungCreateChannelDeref is the D3 create-channel dereference (DoS).
	SamsungCreateChannelDeref = device.SamsungCreateChannelDeref
	// RTKitPSMServiceKill is the D5 malicious-PSM termination (Crash).
	RTKitPSMServiceKill = device.RTKitPSMServiceKill
	// BlueZOptionOverrunGPF is the D8 option-parsing fault (Crash).
	BlueZOptionOverrunGPF = device.BlueZOptionOverrunGPF
)

// FleetDeviceSpec builds a custom farm target spec from a name, MAC
// address, stack profile and port list: the fleet analogue of
// AddCustomDevice. The name identifies the target across seeds, packet
// budgets and report sections, so it must be unique within a farm and
// must not reuse a catalog ID. A profile carrying injected defects
// marks the spec ExpectVuln with the first defect's class.
func FleetDeviceSpec(name, mac string, profile DeviceProfile, ports []ServicePort) (DeviceSpec, error) {
	addr, err := radio.ParseBDAddr(mac)
	if err != nil {
		return DeviceSpec{}, fmt.Errorf("l2fuzz: %w", err)
	}
	spec := DeviceSpec{
		Name: name,
		Config: device.Config{
			Addr:    addr,
			Name:    name,
			Profile: profile,
			Ports:   ports,
		},
		ExpectVuln: len(profile.Vulns) > 0,
	}
	if spec.ExpectVuln {
		spec.ExpectClass = profile.Vulns[0].Class
	}
	if err := spec.Validate(); err != nil {
		return DeviceSpec{}, fmt.Errorf("l2fuzz: %w", err)
	}
	return spec, nil
}

// ParseDeviceSpec decodes the JSON form of a target spec — the format
// cmd/l2farm's -device-file flag reads. Malformed documents are
// rejected with the line and column of the error.
func ParseDeviceSpec(data []byte) (DeviceSpec, error) {
	spec, err := device.DecodeSpec(data)
	if err != nil {
		return DeviceSpec{}, fmt.Errorf("l2fuzz: %w", err)
	}
	return spec, nil
}

// CatalogDeviceIDs returns the paper's Table V device IDs in catalog
// order.
func CatalogDeviceIDs() []string { return device.CatalogIDs() }

// CatalogDeviceSpec returns one of the paper's Table V devices
// ("D1".."D8") as a target spec with its injected defects armed.
func CatalogDeviceSpec(id string) (DeviceSpec, error) {
	spec, err := device.CatalogSpec(id, false)
	if err != nil {
		return DeviceSpec{}, fmt.Errorf("l2fuzz: %w", err)
	}
	return spec, nil
}

// BaselineName selects a comparison fuzzer.
type BaselineName string

// The comparison fuzzers of the paper's evaluation.
const (
	BaselineDefensics BaselineName = "Defensics"
	BaselineBFuzz     BaselineName = "BFuzz"
	BaselineBSS       BaselineName = "BSS"
)

// FuzzConfig parameterises an L2Fuzz run.
type FuzzConfig struct {
	// Seed drives every random choice; equal seeds give equal runs.
	Seed int64
	// MaxPackets caps the run; zero uses the library default.
	MaxPackets int
	// LogWriter receives the run log; nil discards it.
	LogWriter io.Writer
	// Ablations (paper §IV design-choice studies).
	NoStateGuiding  bool
	NoGarbage       bool
	MutateAllFields bool
}

// Simulation is one self-contained virtual Bluetooth testbed.
type Simulation struct {
	medium  *radio.Medium
	client  *host.Client
	sniffer *metrics.Sniffer
	devices map[string]*device.Device
}

// ErrUnknownDevice reports a device name the simulation does not hold.
var ErrUnknownDevice = errors.New("l2fuzz: unknown device")

// testerAddr is the tester endpoint's fixed address.
var testerAddr = radio.MustBDAddr("00:1B:DC:F0:00:01")

// NewSimulation builds an empty testbed with a tester endpoint and an
// attached trace sniffer.
func NewSimulation() (*Simulation, error) {
	m := radio.NewMedium(nil, radio.DefaultTiming())
	cl, err := host.NewClient(m, testerAddr, "test-machine")
	if err != nil {
		return nil, fmt.Errorf("l2fuzz: %w", err)
	}
	return &Simulation{
		medium:  m,
		client:  cl,
		sniffer: metrics.NewSniffer(m, testerAddr),
		devices: make(map[string]*device.Device),
	}, nil
}

// AddCatalogDevice instantiates one of the paper's Table V devices by ID
// ("D1".."D8") with its injected defects armed, returning the name under
// which the simulation tracks it.
func (s *Simulation) AddCatalogDevice(id string) (string, error) {
	return s.addCatalog(id, false)
}

// AddMeasurementDevice instantiates a catalog device with defects
// disabled: the measurement-grade target the paper's Table VII and
// figure experiments need (the device must survive 100,000 packets).
func (s *Simulation) AddMeasurementDevice(id string) (string, error) {
	return s.addCatalog(id, true)
}

func (s *Simulation) addCatalog(id string, disableVulns bool) (string, error) {
	entry, err := device.CatalogEntryByID(id, disableVulns)
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	d, err := device.New(s.medium, entry.Config)
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	s.devices[id] = d
	return id, nil
}

// AddDeviceSpec instantiates a first-class target spec in the
// simulation, tracking it under the spec's name. Catalog specs
// (CatalogDeviceSpec), decoded specs (ParseDeviceSpec) and hand-built
// ones all go through the same path.
func (s *Simulation) AddDeviceSpec(spec DeviceSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	d, err := device.New(s.medium, spec.Config)
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	s.devices[spec.Name] = d
	return spec.Name, nil
}

// AddCustomDevice instantiates a device from a profile and port list. The
// SDP port is added automatically when absent.
func (s *Simulation) AddCustomDevice(name, mac string, profile DeviceProfile, ports []ServicePort) (string, error) {
	addr, err := radio.ParseBDAddr(mac)
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	d, err := device.New(s.medium, device.Config{
		Addr:    addr,
		Name:    name,
		Profile: profile,
		Ports:   ports,
	})
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	s.devices[name] = d
	return name, nil
}

// Devices lists the simulation's device names in insertion-independent
// (sorted) order.
func (s *Simulation) Devices() []string {
	names := make([]string, 0, len(s.devices))
	for n := range s.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Simulation) lookup(name string) (*device.Device, error) {
	d, ok := s.devices[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
	}
	return d, nil
}

// Scan runs only the target-scanning phase against the named device.
func (s *Simulation) Scan(name string) (ScanReport, error) {
	d, err := s.lookup(name)
	if err != nil {
		return ScanReport{}, err
	}
	return core.Scan(s.client, d.Address())
}

// RunL2Fuzz runs the full four-phase L2Fuzz workflow against the named
// device.
func (s *Simulation) RunL2Fuzz(name string, cfg FuzzConfig) (*Report, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	ccfg := core.DefaultConfig(cfg.Seed)
	if cfg.MaxPackets > 0 {
		ccfg.MaxPackets = cfg.MaxPackets
	}
	ccfg.LogWriter = cfg.LogWriter
	ccfg.NoStateGuiding = cfg.NoStateGuiding
	ccfg.NoGarbage = cfg.NoGarbage
	ccfg.MutateAllFields = cfg.MutateAllFields
	return core.New(s.client, ccfg).Run(d.Address())
}

// RunBaseline runs one of the comparison fuzzers for maxPackets packets.
func (s *Simulation) RunBaseline(name string, which BaselineName, seed int64, maxPackets int) (BaselineResult, error) {
	d, err := s.lookup(name)
	if err != nil {
		return BaselineResult{}, err
	}
	var fz fuzzers.Fuzzer
	switch which {
	case BaselineDefensics:
		fz = defensics.New(s.client, seed)
	case BaselineBFuzz:
		fz = bfuzz.New(s.client, seed)
	case BaselineBSS:
		fz = bss.New(s.client, seed)
	default:
		return BaselineResult{}, fmt.Errorf("l2fuzz: unknown baseline %q", which)
	}
	return fz.Run(d.Address(), maxPackets)
}

// AddRFCOMMDevice instantiates a custom device that also mounts an RFCOMM
// multiplexer with the given server channels — the substrate for the
// paper's §V extension. When vulnerable, the multiplexer ships the
// reserved-DLCI defect the extension fuzzer can find.
func (s *Simulation) AddRFCOMMDevice(name, mac string, profile DeviceProfile, ports []ServicePort, services []RFCOMMService, vulnerable bool) (string, error) {
	addr, err := radio.ParseBDAddr(mac)
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	cfg := device.Config{
		Addr:           addr,
		Name:           name,
		Profile:        profile,
		Ports:          ports,
		RFCOMMServices: services,
	}
	if vulnerable {
		cfg.RFCOMMDefect = rfcomm.ReservedDLCIDefect()
	}
	d, err := device.New(s.medium, cfg)
	if err != nil {
		return "", fmt.Errorf("l2fuzz: %w", err)
	}
	s.devices[name] = d
	return name, nil
}

// RunRFCOMMFuzz runs the §V extension fuzzer — L2Fuzz's state guiding and
// core field mutating applied to the RFCOMM layer — against the named
// device, which must expose a pairing-free RFCOMM port.
func (s *Simulation) RunRFCOMMFuzz(name string, seed int64, maxFrames int) (*RFCOMMReport, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	cfg := rfcommfuzz.DefaultConfig(seed)
	if maxFrames > 0 {
		cfg.MaxFrames = maxFrames
	}
	return rfcommfuzz.New(s.client, cfg).Run(d.Address())
}

// RunSDPFuzz runs the SDP scenario-diversity engine — DataElement/PDU
// malformation against the named device's service records — until the
// SDP server dies or the PDU budget is exhausted.
func (s *Simulation) RunSDPFuzz(name string, seed int64, maxPDUs int) (*SDPFuzzReport, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	cfg := sdpfuzz.DefaultConfig(seed)
	if maxPDUs > 0 {
		cfg.MaxPDUs = maxPDUs
	}
	return sdpfuzz.New(s.client, cfg).Run(d.Address())
}

// RunSMFuzz runs the state-machine scenario-diversity engine — a
// model-guided walk over the L2CAP channel transition table — against
// the named device.
func (s *Simulation) RunSMFuzz(name string, seed int64, maxPackets int) (*SMFuzzReport, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	cfg := smfuzz.DefaultConfig(seed)
	if maxPackets > 0 {
		cfg.MaxPackets = maxPackets
	}
	return smfuzz.New(s.client, cfg).Run(d.Address())
}

// RunCampaign performs long-term fuzzing against the named device: the
// §V extension that replaces the paper's manual device resets with
// automatic ones in the virtual environment. Zero-valued config fields
// get library defaults.
func (s *Simulation) RunCampaign(name string, cfg CampaignConfig) (*CampaignReport, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return campaign.New(s.client, d, cfg).Run()
}

// Metrics returns the sniffer's measurements over everything transmitted
// so far in this simulation.
func (s *Simulation) Metrics() Metrics { return s.sniffer.Summary() }

// StateCoverage returns the names of the L2CAP states the trace shows the
// targets visited.
func (s *Simulation) StateCoverage() []string {
	var out []string
	for _, st := range s.sniffer.StatesVisited() {
		out = append(out, st.String())
	}
	return out
}

// Crashed reports whether the named device has crashed.
func (s *Simulation) Crashed(name string) (bool, error) {
	d, err := s.lookup(name)
	if err != nil {
		return false, err
	}
	return d.Crashed(), nil
}

// CrashDump renders the named device's crash artefact (an Android
// tombstone, a GP-fault record) or an empty string when the device is
// healthy.
func (s *Simulation) CrashDump(name string) (string, error) {
	d, err := s.lookup(name)
	if err != nil {
		return "", err
	}
	if dump := d.CrashDump(); dump != nil {
		return dump.Render(), nil
	}
	return "", nil
}

// ResetDevice performs the manual reset the paper's testers did between
// runs, restoring a crashed device to service.
func (s *Simulation) ResetDevice(name string) error {
	d, err := s.lookup(name)
	if err != nil {
		return err
	}
	wasGone := d.PoweredOff()
	d.Reset()
	if wasGone {
		// The device vanished from the air entirely; put it back.
		if err := s.medium.Register(d.Controller()); err != nil {
			return fmt.Errorf("l2fuzz: re-register after reset: %w", err)
		}
	}
	s.client.Disconnect(d.Address())
	return nil
}

// Triage correlates a finding with the named device's crash artefact and
// returns a structured root-cause analysis — the §V "internal log
// hooking" extension. It works with or without an artefact (firmware
// deaths leave none).
func (s *Simulation) Triage(name string, finding Finding) (RootCause, error) {
	d, err := s.lookup(name)
	if err != nil {
		return RootCause{}, err
	}
	return triage.Analyze(finding, d.CrashDump()), nil
}

// Ports lists the named device's service ports.
func (s *Simulation) Ports(name string) ([]ServicePort, error) {
	d, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return d.Ports(), nil
}
