package l2fuzz_test

import (
	"strings"
	"testing"

	"l2fuzz"
)

func TestSimulationQuickstartFlow(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddCatalogDevice("D2")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Found {
		t.Fatalf("no vulnerability found on D2 in %d packets", report.PacketsSent)
	}
	if report.Finding.Error != l2fuzz.ErrConnectionFailed {
		t.Errorf("error class = %v, want Connection Failed", report.Finding.Error)
	}
	crashed, err := sim.Crashed(target)
	if err != nil || !crashed {
		t.Fatalf("Crashed() = (%v, %v), want (true, nil)", crashed, err)
	}
	dump, err := sim.CrashDump(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "l2c_csm_execute") {
		t.Errorf("tombstone missing fault frame:\n%s", dump)
	}
	// Manual reset restores the device.
	if err := sim.ResetDevice(target); err != nil {
		t.Fatal(err)
	}
	crashed, err = sim.Crashed(target)
	if err != nil || crashed {
		t.Fatalf("after reset Crashed() = (%v, %v), want (false, nil)", crashed, err)
	}
}

func TestSimulationScanOnly(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddCatalogDevice("D5")
	if err != nil {
		t.Fatal(err)
	}
	scan, err := sim.Scan(target)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Meta.Name != "AirPods" {
		t.Errorf("scan name = %q", scan.Meta.Name)
	}
	if len(scan.Ports) != 6 {
		t.Errorf("D5 has %d ports, want 6", len(scan.Ports))
	}
	if len(scan.ExploitablePSMs) == 0 {
		t.Error("no exploitable ports")
	}
	ports, err := sim.Ports(target)
	if err != nil || len(ports) != 6 {
		t.Errorf("Ports() = (%d, %v)", len(ports), err)
	}
}

func TestSimulationBaselinesAndMetrics(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddMeasurementDevice("D2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunBaseline(target, l2fuzz.BaselineBSS, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsSent < 200 {
		t.Errorf("BSS sent %d packets, want ≥ 200", res.PacketsSent)
	}
	m := sim.Metrics()
	if m.Transmitted < 200 {
		t.Errorf("metrics transmitted = %d", m.Transmitted)
	}
	if m.MPRatio != 0 {
		t.Errorf("BSS MP ratio = %.4f, want 0", m.MPRatio)
	}
	if len(sim.StateCoverage()) == 0 {
		t.Error("no state coverage inferred")
	}
	if _, err := sim.RunBaseline(target, "Nope", 1, 10); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestSimulationCustomDevice(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddCustomDevice("my-gadget", "02:00:00:00:00:01",
		l2fuzz.WindowsProfile("5.0"), []l2fuzz.ServicePort{
			{PSM: 0x0019, Name: "AVDTP"},
		})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 3, MaxPackets: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if report.Found {
		t.Error("robust custom device reported vulnerable")
	}
	if report.PacketsSent < 5_000 {
		t.Errorf("budget not used: %d", report.PacketsSent)
	}
}

func TestSimulationErrors(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddCatalogDevice("D42"); err == nil {
		t.Error("bad catalog ID accepted")
	}
	if _, err := sim.Scan("ghost"); err == nil {
		t.Error("scan of unknown device accepted")
	}
	if _, err := sim.RunL2Fuzz("ghost", l2fuzz.FuzzConfig{}); err == nil {
		t.Error("fuzz of unknown device accepted")
	}
	if _, err := sim.AddCustomDevice("x", "not-a-mac", l2fuzz.IOSProfile("4.2"), nil); err == nil {
		t.Error("bad MAC accepted")
	}
	if err := sim.ResetDevice("ghost"); err == nil {
		t.Error("reset of unknown device accepted")
	}
}

func TestSimulationDeviceListing(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"D3", "D1", "D2"} {
		if _, err := sim.AddCatalogDevice(id); err != nil {
			t.Fatal(err)
		}
	}
	got := sim.Devices()
	if len(got) != 3 || got[0] != "D1" || got[1] != "D2" || got[2] != "D3" {
		t.Errorf("Devices() = %v, want sorted [D1 D2 D3]", got)
	}
}

func TestRFCOMMExtensionThroughPublicAPI(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddRFCOMMDevice("headset", "8C:F5:A3:00:00:42",
		l2fuzz.BlueDroidProfile("5.0", "fp"),
		[]l2fuzz.ServicePort{{PSM: 0x0003, Name: "RFCOMM"}},
		[]l2fuzz.RFCOMMService{{Channel: 1, Name: "SPP"}},
		true)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunRFCOMMFuzz(target, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Found {
		t.Fatalf("extension fuzzer found nothing in %d frames", report.FramesSent)
	}
	dump, err := sim.CrashDump(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "rfc_mx_sm_execute") {
		t.Errorf("dump missing RFCOMM fault frame:\n%s", dump)
	}
	// The device recovers for another run.
	if err := sim.ResetDevice(target); err != nil {
		t.Fatal(err)
	}
	if crashed, _ := sim.Crashed(target); crashed {
		t.Error("device still crashed after reset")
	}
}

func TestResetAfterFirmwareCrashRestoresAir(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddCatalogDevice("D5")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Found {
		t.Fatal("D5 defect did not fire")
	}
	if err := sim.ResetDevice(target); err != nil {
		t.Fatal(err)
	}
	// The device is back on the air: a scan succeeds.
	if _, err := sim.Scan(target); err != nil {
		t.Fatalf("scan after reset: %v", err)
	}
}

func TestTriageThroughPublicAPI(t *testing.T) {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddCatalogDevice("D2")
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 1})
	if err != nil || !report.Found {
		t.Fatalf("run = (%v, found=%v)", err, report != nil && report.Found)
	}
	cause, err := sim.Triage(target, report.Finding)
	if err != nil {
		t.Fatal(err)
	}
	text := cause.Render()
	for _, want := range []string{"CWE-476", "L2CAP", "high"} {
		if !strings.Contains(text, want) {
			t.Errorf("root cause missing %q:\n%s", want, text)
		}
	}
}

// TestFleetStreamingThroughPublicAPI checks the streamed farm exposed
// by StartFleet agrees with the batch RunFleet over the same matrix,
// and that findings arrive as FleetNewFinding events.
func TestFleetStreamingThroughPublicAPI(t *testing.T) {
	cfg := l2fuzz.FleetConfig{
		Devices:          []string{"D2", "D5"},
		Kinds:            []l2fuzz.FleetKind{l2fuzz.FleetL2Fuzz, l2fuzz.FleetRFCOMM},
		BaseSeed:         7,
		Workers:          4,
		MaxPacketsPerJob: 20_000,
	}
	batch, err := l2fuzz.RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	farm, err := l2fuzz.StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var live []l2fuzz.FleetFinding
	for ev := range farm.Events() {
		if ev.Type == l2fuzz.FleetNewFinding {
			live = append(live, *ev.Finding)
		}
	}
	streamed := farm.Wait()

	batch.ScrubWall()
	streamed.ScrubWall()
	if b, s := batch.Render(), streamed.Render(); b != s {
		t.Errorf("streamed farm disagrees with batch farm:\nbatch:\n%s\nstreamed:\n%s", b, s)
	}
	if len(live) != len(streamed.Findings) {
		t.Errorf("%d NewFinding events for %d report findings", len(live), len(streamed.Findings))
	}
	if len(streamed.Findings) == 0 {
		t.Error("matrix produced no findings; the event check would be vacuous")
	}
	if streamed.Metrics.StatesCovered != len(streamed.Metrics.States) ||
		len(streamed.StateCoverage) != streamed.Metrics.StatesCovered {
		t.Errorf("state coverage inconsistent: %d / %v / %v",
			streamed.Metrics.StatesCovered, streamed.Metrics.States, streamed.StateCoverage)
	}
}

// TestDeviceSpecThroughPublicAPI drives the target-spec surface end to
// end: a JSON spec decoded with ParseDeviceSpec fuzzes in a Simulation
// via AddDeviceSpec, a FleetDeviceSpec-built target joins a farm next
// to a catalog device via CustomDevices, and the helpers reject the
// inputs they must.
func TestDeviceSpecThroughPublicAPI(t *testing.T) {
	spec, err := l2fuzz.ParseDeviceSpec([]byte(`{
	  "name": "smart-toaster",
	  "addr": "02:42:AC:11:00:02",
	  "profile": {"stack": "bluez", "btVersion": "5.0"},
	  "ports": [{"psm": 1, "name": "Service Discovery"}, {"psm": 4097, "name": "toast-control"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	target, err := sim.AddDeviceSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if target != "smart-toaster" {
		t.Errorf("tracked as %q, want the spec name", target)
	}
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 3, MaxPackets: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if report.PacketsSent == 0 {
		t.Error("decoded spec fuzzed zero packets")
	}

	// A defect-armed API-built spec in a farm next to a catalog device.
	cam, err := l2fuzz.FleetDeviceSpec("iot-cam", "02:EE:10:00:00:01",
		l2fuzz.BlueDroidProfile("5.1", "vendor/iotcam:13",
			l2fuzz.BlueDroidCCBNullDeref(0x40, 2, true)),
		[]l2fuzz.ServicePort{{PSM: 0x1001, Name: "camera-control"}})
	if err != nil {
		t.Fatal(err)
	}
	if !cam.ExpectVuln {
		t.Error("defect-armed spec not marked ExpectVuln")
	}
	farm, err := l2fuzz.RunFleet(l2fuzz.FleetConfig{
		Devices:          []string{"D4"},
		CustomDevices:    []l2fuzz.DeviceSpec{cam},
		BaseSeed:         7,
		Workers:          2,
		MaxPacketsPerJob: 20_000,
		Budgets:          map[string]int{"iot-cam": 10_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if farm.PerDevice["iot-cam"] == nil || farm.PerDevice["D4"] == nil {
		t.Fatalf("per-device sections = %v, want D4 and iot-cam", farm.PerDevice)
	}
	if len(farm.FindingsOn("iot-cam")) == 0 {
		t.Error("widened defect surfaced no finding on the custom target")
	}

	if _, err := l2fuzz.ParseDeviceSpec([]byte("{\n  \"name\": 7\n}")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed spec error %v carries no line position", err)
	}
	if _, err := l2fuzz.FleetDeviceSpec("", "02:00:00:00:00:01", l2fuzz.BTWProfile("5.0"), nil); err == nil {
		t.Error("nameless FleetDeviceSpec accepted")
	}
	if got := l2fuzz.CatalogDeviceIDs(); len(got) != 8 || got[0] != "D1" || got[7] != "D8" {
		t.Errorf("CatalogDeviceIDs() = %v", got)
	}
	if spec, err := l2fuzz.CatalogDeviceSpec("D5"); err != nil || spec.Name != "D5" || !spec.ExpectVuln {
		t.Errorf("CatalogDeviceSpec(D5) = %+v, %v", spec, err)
	}
	if _, err := l2fuzz.CatalogDeviceSpec("D9"); err == nil {
		t.Error("CatalogDeviceSpec(D9) accepted")
	}
}
