// Rfcommfuzz demonstrates the paper's §V extension claim: L2Fuzz's two
// techniques — state guiding and core field mutating — transfer to the
// Bluetooth protocols stacked above L2CAP. Here they run against the
// RFCOMM multiplexer of a simulated headset whose serial-port service is
// reachable without pairing, finding a reserved-DLCI defect one layer
// above where the original tool stops.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rfcommfuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		return err
	}

	// A headset exposing a pairing-free RFCOMM port with two server
	// channels, carrying a defect in its multiplexer: a SABM addressed
	// to a reserved DLCI with a garbage tail dereferences an unallocated
	// DLC control block — the same bug shape as the paper's L2CAP
	// findings, one layer up.
	target, err := sim.AddRFCOMMDevice("headset", "8C:F5:A3:00:00:42",
		l2fuzz.BlueDroidProfile("5.0", "vendor/headset:5.0/fp"),
		[]l2fuzz.ServicePort{{PSM: 0x0003, Name: "RFCOMM"}},
		[]l2fuzz.RFCOMMService{
			{Channel: 1, Name: "Serial Port Profile"},
			{Channel: 2, Name: "Hands-Free"},
		},
		true) // defect armed
	if err != nil {
		return err
	}

	fmt.Println("fuzzing the RFCOMM layer: DLCI is the mutable core field,")
	fmt.Println("EA/length/FCS are dependent fields kept valid, tails bounded")

	report, err := sim.RunRFCOMMFuzz(target, 1, 0)
	if err != nil {
		return err
	}
	if !report.Found {
		fmt.Printf("no defect found in %d frames\n", report.FramesSent)
		return nil
	}
	fmt.Printf("\nDEFECT FOUND after %d frames (%v simulated)\n",
		report.FramesSent, report.Elapsed.Round(1e6))
	fmt.Printf("killer frame: %s\n", report.LastFrame)
	fmt.Printf("L2CAP still alive underneath: %v (the whole service died)\n", report.L2CAPAlive)

	dump, err := sim.CrashDump(target)
	if err != nil {
		return err
	}
	fmt.Println("\ndevice-side artefact:")
	fmt.Println(dump)
	return nil
}
