// Portscan sweeps the whole Table V testbed with L2Fuzz's target-scanning
// phase: inquiry, SDP enumeration and pairing-free port probing — the
// reconnaissance an attacker (or auditor) performs before fuzzing, and a
// demonstration of building custom devices alongside catalog ones.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "portscan:", err)
		os.Exit(1)
	}
}

func run() error {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		return err
	}

	// The paper's eight devices...
	var targets []string
	for _, id := range []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8"} {
		name, err := sim.AddCatalogDevice(id)
		if err != nil {
			return err
		}
		targets = append(targets, name)
	}
	// ...plus a custom locked-down gadget: every advertised service
	// requires pairing, so the scanner must fall back to SDP.
	custom, err := sim.AddCustomDevice("locked-gadget", "02:00:00:00:00:42",
		l2fuzz.BTWProfile("5.0"), []l2fuzz.ServicePort{
			{PSM: 0x0003, Name: "RFCOMM", RequiresPairing: true},
			{PSM: 0x0011, Name: "HID Control", RequiresPairing: true},
		})
	if err != nil {
		return err
	}
	targets = append(targets, custom)

	exploitableTotal := 0
	for _, name := range targets {
		scan, err := sim.Scan(name)
		if err != nil {
			return err
		}
		open, gated := 0, 0
		for _, p := range scan.Ports {
			if p.RequiresPairing {
				gated++
			} else if !p.Refused {
				open++
			}
		}
		fmt.Printf("%-14s %s  %-18s %2d ports: %d open, %d pairing-gated → fuzz %d port(s)\n",
			name, scan.Meta.Addr, scan.Meta.Name,
			len(scan.Ports), open, gated, len(scan.ExploitablePSMs))
		exploitableTotal += len(scan.ExploitablePSMs)
	}
	fmt.Printf("\n%d pairing-free attack surfaces across %d devices — every one of them\n",
		exploitableTotal, len(targets))
	fmt.Println("reachable without authentication, which is the paper's §III-B premise.")
	return nil
}
