// Example fleet sweeps the paper's whole Table V testbed in one
// parallel farm run: eight devices × L2Fuzz on an eight-worker pool,
// reproducing the Table VI detections in a single de-duplicated report
// instead of eight babysat sessions — the §V "virtual environment"
// limitation answered at farm scale. The farm is consumed through its
// streaming event interface, printing progress and findings as they
// land rather than waiting for the end of the run.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	farm, err := l2fuzz.StartFleet(l2fuzz.FleetConfig{
		// Devices and Kinds default to the full Table V testbed × L2Fuzz.
		BaseSeed:         7,
		Workers:          8,
		MaxPacketsPerJob: 1_000_000,
		// The robust devices never crash; a smaller budget keeps the
		// farm's time where the paper's findings are.
		Budgets: map[string]int{"D4": 100_000, "D6": 100_000, "D7": 100_000},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
	for ev := range farm.Events() {
		switch ev.Type {
		case l2fuzz.FleetJobDone:
			fmt.Printf("[%d/%d] %s done\n", ev.Done, ev.Total, ev.Job.String())
		case l2fuzz.FleetNewFinding:
			fmt.Printf("        new finding: %s\n", ev.Finding.Signature)
		}
	}
	report := farm.Wait()

	fmt.Println()
	fmt.Print(report.Render())

	fmt.Println("\nTable VI cross-check (defect-armed devices must be found):")
	for _, id := range []string{"D1", "D2", "D3", "D5", "D8"} {
		verdict := "MISSED"
		if len(report.FindingsOn(id)) > 0 {
			verdict = "found"
		}
		fmt.Printf("  %s: %s\n", id, verdict)
	}
}
