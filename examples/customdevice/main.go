// Example customdevice opens the farm's target axis beyond the paper's
// Table V: a device the paper never named — a smart speaker with a
// custom port map, a BlueDroid-style stack and two injected defects
// (the null-CCB L2CAP bug and the reserved-DLCI RFCOMM bug) — is
// fuzzed next to two catalog devices in one farm run. The target is
// declared as a JSON spec, the same format cmd/l2farm's -device-file
// flag reads, and every layer keys it by name: the seed derivation,
// the per-device report section and the packet-budget override.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

const specJSON = `{
  "name": "smart-speaker",
  "addr": "D0:03:DF:12:34:56",
  "classOfDevice": 2360324,
  "profile": {
    "stack": "bluedroid",
    "btVersion": "5.2",
    "fingerprint": "vendor/speaker:12/SQ1A.220205.002/8010174:user/release-keys"
  },
  "ports": [
    {"psm": 1, "name": "Service Discovery"},
    {"psm": 3, "name": "RFCOMM", "requiresPairing": true},
    {"psm": 25, "name": "AVDTP"},
    {"psm": 4097, "name": "speaker-control"},
    {"psm": 4099, "name": "speaker-ota", "requiresPairing": true}
  ],
  "defects": ["ccb-null-deref"],
  "rfcomm": {
    "services": [{"channel": 1, "name": "Serial Port Profile"}],
    "defect": true
  },
  "expectClass": "DoS"
}`

func main() {
	speaker, err := l2fuzz.ParseDeviceSpec([]byte(specJSON))
	if err != nil {
		fmt.Fprintln(os.Stderr, "customdevice:", err)
		os.Exit(1)
	}

	report, err := l2fuzz.RunFleet(l2fuzz.FleetConfig{
		Devices:       []string{"D2", "D5"},
		CustomDevices: []l2fuzz.DeviceSpec{speaker},
		Kinds:         []l2fuzz.FleetKind{l2fuzz.FleetL2Fuzz, l2fuzz.FleetRFCOMM},
		BaseSeed:      7,
		Workers:       8,
		// The L2CAP defect is as rare as D2's; give the custom target the
		// same long leash the catalog sweep uses.
		MaxPacketsPerJob: 1_000_000,
		Budgets:          map[string]int{"smart-speaker": 2_000_000},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "customdevice:", err)
		os.Exit(1)
	}
	fmt.Print(report.Render())

	fmt.Println("\nTarget-axis cross-check:")
	ok := true
	for _, name := range []string{"D2", "D5", "smart-speaker"} {
		g := report.PerDevice[name]
		verdict := "MISSING from per-device report"
		if g != nil {
			verdict = fmt.Sprintf("%d jobs, %d packets, %d findings", g.Jobs, g.Packets, g.Findings)
		} else {
			ok = false
		}
		fmt.Printf("  %-14s %s\n", name, verdict)
	}
	if n := len(report.FindingsOn("smart-speaker")); n == 0 {
		fmt.Println("  smart-speaker defects went undetected")
		ok = false
	} else {
		fmt.Printf("  smart-speaker defects surfaced as %d distinct signature(s)\n", n)
	}
	if !ok {
		os.Exit(1)
	}
}
