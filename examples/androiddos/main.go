// Androiddos reproduces the paper's §IV-E case study step by step: the
// zero-day denial of service in the Android Bluetooth stack (Android ID
// 195112457), triggered by a malformed Configuration Request with a
// stale DCID and a garbage tail, sent on the pairing-free SDP port.
//
// Unlike the quickstart, which lets the fuzzer search, this example
// replays the exact attack flow: connect to SDP without pairing, enter
// the configuration job, send the killer packet, watch Bluetooth die.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "androiddos:", err)
		os.Exit(1)
	}
}

func run() error {
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		return err
	}
	target, err := sim.AddCatalogDevice("D2") // Pixel 3
	if err != nil {
		return err
	}

	// Step 1 (paper Figure 4 analogy): scan and pick the SDP port, which
	// never requires pairing.
	scan, err := sim.Scan(target)
	if err != nil {
		return err
	}
	fmt.Printf("step 1: scanned %s — SDP reachable without pairing among %d ports\n",
		scan.Meta.Name, len(scan.Ports))

	// Steps 2-4: let the fuzzer run with a seed that reaches the
	// configuration job quickly; state guiding enters the configuration
	// states and core field mutating produces the malformed
	// Configuration Request (DCID low byte 0x40, garbage tail) that
	// dereferences the null channel control block.
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 1})
	if err != nil {
		return err
	}
	if !report.Found {
		return fmt.Errorf("defect did not fire in %d packets", report.PacketsSent)
	}
	fmt.Printf("step 2: state guiding reached the configuration job (state %v)\n",
		report.Finding.State)
	fmt.Printf("step 3: core field mutating produced the killer packet: %v\n",
		report.Finding.LastMutation)
	fmt.Printf("step 4: detection — %s, classified %s, after %v\n",
		report.Finding.Error, report.Finding.Severity(), report.Elapsed.Round(1e6))

	// The device's tombstone mirrors the paper's Figure 12: SIGSEGV in
	// l2c_csm_execute on the L2CAP channel control block.
	dump, err := sim.CrashDump(target)
	if err != nil {
		return err
	}
	fmt.Println("\ntombstone (paper Figure 12):")
	fmt.Println(dump)

	// Figure 13 analogy: Bluetooth is paralysed until the user resets it.
	if crashed, _ := sim.Crashed(target); crashed {
		fmt.Println("Bluetooth is paralysed; resetting the device (paper Figure 13)...")
	}
	if err := sim.ResetDevice(target); err != nil {
		return err
	}
	if _, err := sim.Scan(target); err != nil {
		return fmt.Errorf("device did not recover: %w", err)
	}
	fmt.Println("device recovered after manual reset")
	return nil
}
