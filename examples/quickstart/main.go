// Quickstart: fuzz the paper's reference phone (D2, a Google Pixel 3
// running BlueDroid) and print the finding — the shortest path through
// the public API.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A simulation is a self-contained virtual Bluetooth testbed.
	sim, err := l2fuzz.NewSimulation()
	if err != nil {
		return err
	}

	// D2 is the Pixel 3 of the paper's Table V, with the BlueDroid
	// null-CCB defect armed.
	target, err := sim.AddCatalogDevice("D2")
	if err != nil {
		return err
	}

	// Run the four-phase workflow: target scanning, state guiding, core
	// field mutating, vulnerability detecting.
	report, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{Seed: 1})
	if err != nil {
		return err
	}

	fmt.Printf("scanned %q: %d ports, %d exploitable without pairing\n",
		report.Scan.Meta.Name, len(report.Scan.Ports), len(report.Scan.ExploitablePSMs))
	fmt.Printf("sent %d packets (%d malformed) in %v simulated, testing %d L2CAP states\n",
		report.PacketsSent, report.MalformedSent,
		report.Elapsed.Round(1e6), len(report.StatesTested))

	if !report.Found {
		fmt.Println("no vulnerability found")
		return nil
	}
	fmt.Printf("\nVULNERABILITY: %s → %s, detected in state %v on port %v\n",
		report.Finding.Error, report.Finding.Severity(),
		report.Finding.State, report.Finding.PSM)

	// The black-box fuzzer saw only the connection error; the simulated
	// device also recorded the tombstone the paper shows in Figure 12.
	dump, err := sim.CrashDump(target)
	if err != nil {
		return err
	}
	fmt.Println("\ndevice-side crash artefact:")
	fmt.Println(dump)
	return nil
}
