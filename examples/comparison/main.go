// Comparison runs the paper's four-fuzzer shoot-out (§IV-C/D) at a
// reduced budget: L2Fuzz, Defensics, BFuzz and BSS each fuzz a
// measurement-grade Pixel 3, and the trace sniffer reports MP ratio, PR
// ratio, mutation efficiency, packet rate and state coverage — the
// content of Table VII and Figure 10.
package main

import (
	"flag"
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		packets = flag.Int("packets", 30_000, "per-fuzzer packet budget")
		seed    = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	type contender struct {
		name     string
		baseline l2fuzz.BaselineName // empty for L2Fuzz itself
	}
	contenders := []contender{
		{name: "L2Fuzz"},
		{name: "Defensics", baseline: l2fuzz.BaselineDefensics},
		{name: "BFuzz", baseline: l2fuzz.BaselineBFuzz},
		{name: "BSS", baseline: l2fuzz.BaselineBSS},
	}

	fmt.Printf("%-10s %-9s %-9s %-11s %-9s %-7s\n",
		"Fuzzer", "MP Ratio", "PR Ratio", "Efficiency", "pps", "States")
	for _, c := range contenders {
		// Each contender gets a pristine testbed and target, like
		// re-flashing the phone between tools.
		sim, err := l2fuzz.NewSimulation()
		if err != nil {
			return err
		}
		target, err := sim.AddMeasurementDevice("D2")
		if err != nil {
			return err
		}
		if c.baseline == "" {
			if _, err := sim.RunL2Fuzz(target, l2fuzz.FuzzConfig{
				Seed: seedOf(*seed), MaxPackets: *packets,
			}); err != nil {
				return err
			}
		} else {
			if _, err := sim.RunBaseline(target, c.baseline, seedOf(*seed), *packets); err != nil {
				return err
			}
		}
		m := sim.Metrics()
		fmt.Printf("%-10s %-9s %-9s %-11s %-9.2f %-7d\n",
			c.name,
			fmt.Sprintf("%.2f%%", 100*m.MPRatio),
			fmt.Sprintf("%.2f%%", 100*m.PRRatio),
			fmt.Sprintf("%.2f%%", 100*m.MutationEfficiency),
			m.PacketsPerSecond, m.StatesCovered)
	}
	fmt.Println("\npaper Table VII for reference: L2Fuzz 69.96/32.49/47.22,",
		"Defensics 2.38/1.73/2.33, BFuzz 1.50/91.60/0.12, BSS 0/0/0")
	return nil
}

func seedOf(s int64) int64 { return s }
