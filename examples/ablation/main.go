// Example ablation reproduces the paper's §IV-D design-argument grid —
// baseline L2Fuzz against its three single-choice ablations
// (no-state-guiding, all-fields, no-garbage) — as one farm run across
// all eight Table V devices instead of serial single-device bench
// runs. The targets are measurement-grade (defects disabled) because
// the grid is judged on trace metrics, not detections: each design
// choice must beat its ablation on the metric it claims to improve,
// and the farm report's per-variant table shows those deltas directly.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	report, err := l2fuzz.RunFleet(l2fuzz.FleetConfig{
		// Devices defaults to the whole Table V testbed; Kinds to L2Fuzz.
		Variants:         l2fuzz.FleetAblationVariants(),
		BaseSeed:         11,
		Workers:          8,
		MaxPacketsPerJob: 40_000,
		MeasurementGrade: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablation:", err)
		os.Exit(1)
	}
	fmt.Print(report.Render())

	baseline := report.PerVariant[l2fuzz.FleetVariantBaseline]
	checks := []struct {
		ablated string
		metric  string
		better  func(base, abl *l2fuzz.FleetVariantStats) bool
		explain string
	}{
		{
			ablated: l2fuzz.FleetVariantNoStateGuiding,
			metric:  "state coverage",
			better: func(base, abl *l2fuzz.FleetVariantStats) bool {
				return base.Metrics.StatesCovered > abl.Metrics.StatesCovered
			},
			explain: "state guiding reaches the deep configuration/move states",
		},
		{
			ablated: l2fuzz.FleetVariantAllFields,
			metric:  "MP ratio",
			better: func(base, abl *l2fuzz.FleetVariantStats) bool {
				return base.Metrics.MPRatio > abl.Metrics.MPRatio
			},
			explain: "core-field-only mutation keeps packets valid-malformed",
		},
		{
			ablated: l2fuzz.FleetVariantNoGarbage,
			metric:  "MP ratio",
			better: func(base, abl *l2fuzz.FleetVariantStats) bool {
				return base.Metrics.MPRatio > abl.Metrics.MPRatio
			},
			explain: "the garbage tail is a malformation source of its own",
		},
	}

	fmt.Println("\n§IV-D cross-check (baseline must beat each ablation on its metric):")
	ok := true
	for _, c := range checks {
		ablated := report.PerVariant[c.ablated]
		verdict := "holds"
		if baseline == nil || ablated == nil || !c.better(baseline, ablated) {
			verdict = "VIOLATED"
			ok = false
		}
		fmt.Printf("  baseline > %-18s on %-16s %s  (%s)\n", c.ablated, c.metric+":", verdict, c.explain)
	}
	if !ok {
		os.Exit(1)
	}
}
