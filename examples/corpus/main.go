// Example corpus closes the loop the paper's §V leaves open: findings
// as durable, reproducible artefacts. A farm runs with a corpus store
// attached, so every finding's repro trace is persisted as it streams
// in; one stored finding is then reloaded, replayed against a fresh
// rig to prove the crash still fires, delta-debugged down to a minimal
// witness, and triaged from the freshly reproduced crash artefact.
// A second farm over the same corpus then reports every signature as
// known — repeated farms only ever surface genuinely new crashes.
package main

import (
	"fmt"
	"os"

	"l2fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "l2fuzz-corpus-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := l2fuzz.OpenCorpus(dir)
	if err != nil {
		return err
	}

	// A farm over the two fast-crashing Table V targets, corpus-backed:
	// D5's RFCOMM mux defect and D2's campaign-findable CCB dereference
	// both land in the store as they are found.
	cfg := l2fuzz.FleetConfig{
		Devices:          []string{"D2", "D5"},
		Kinds:            []l2fuzz.FleetKind{l2fuzz.FleetCampaign, l2fuzz.FleetRFCOMM},
		BaseSeed:         7,
		Workers:          4,
		MaxPacketsPerJob: 250_000,
		Corpus:           store,
	}
	fmt.Println("--- first farm run (empty corpus) ---")
	report, err := l2fuzz.RunFleet(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.Render())
	if report.Corpus.Saved == 0 {
		return fmt.Errorf("farm persisted no findings")
	}

	// Reload a stored finding and prove it reproduces on a fresh rig.
	entries, err := store.Entries()
	if err != nil {
		return err
	}
	entry := entries[0]
	fmt.Printf("\n--- replaying %s (%d recorded ops, found via %s on %s) ---\n",
		entry.Signature, len(entry.Trace.Ops), entry.Kind, entry.Trace.Target)
	res, err := l2fuzz.ReplayCorpusEntry(entry, l2fuzz.CorpusReplayConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("reproduced: %v (observed %s)\n", res.Reproduced, res.Signature)

	// Delta-debug the trace to a minimal witness and triage it.
	minimized, err := l2fuzz.MinimizeCorpusEntry(entry, l2fuzz.CorpusMinimizeConfig{
		MaxReplays: 512,
	})
	if err != nil {
		return err
	}
	fmt.Printf("minimized: %d ops -> %d ops in %d replays\n",
		minimized.Before, minimized.After, minimized.Replays)
	final, err := l2fuzz.ReplayCorpusEntry(minimized.Entry, l2fuzz.CorpusReplayConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("minimal witness still reproduces: %v\n\n%s\n", final.Reproduced, final.RootCause.Render())

	// The same farm again: nothing is new, everything is known.
	fmt.Println("\n--- second farm run (same corpus) ---")
	report2, err := l2fuzz.RunFleet(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report2.Render())
	if report2.Corpus.Known == 0 || report2.Corpus.Saved != 0 {
		return fmt.Errorf("second run did not recognise the stored findings: %+v", report2.Corpus)
	}
	fmt.Println("\nsecond run re-reported nothing as new: the corpus de-duplicates across runs.")
	return nil
}
